// Package fluid implements the hybrid analytic/discrete client-aggregation
// tier: above a configurable arrival-rate threshold an AppWorkload stops
// emitting discrete operations and instead contributes a deterministic
// fluid flow, evaluated per curve segment through the M/M/c machinery of
// internal/queueing (mean and p90 response, occupancy, throughput), while
// reserving the matching utilization on the hardware tiers it would have
// loaded so discrete traffic sharing a tier sees honest residual capacity.
//
// The mode decision is made entirely at compile time from compile-time
// inputs — the population curve, the thinning-style threshold, the
// saturation guard and the declared fault windows — so every crossover
// instant is a precomputed calendar event: the clock fast-forwards across
// fluid stretches exactly as it does across quiet hours, the sharded
// engine barriers on crossovers exactly as it does on fault transitions,
// and the whole schedule is bit-reproducible at any shard count. Whenever
// the guard or a fault window forbids the analytic model, the workload
// falls back to the discrete Lewis-Shedler sampler for that segment, so
// tail behavior under stress stays honest. See DESIGN.md, "Fluid workload
// tier".
package fluid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/queueing"
	"repro/internal/workload"
)

// DefaultRhoMax is the default saturation guard: segments whose ceiling
// utilization at the bottleneck station reaches this value are simulated
// discretely. 0.9 keeps the analytic model well inside the region where
// the mean-field M/M/c quantities are accurate and far from the ErlangC
// stability boundary (the guard trips strictly before queueing.ErrSaturated
// can occur — a property test pins this).
const DefaultRhoMax = 0.9

// Config parameterizes the fluid tier for one workload.
type Config struct {
	// Above is the expected-arrivals-per-tick threshold at or above which a
	// segment is aggregated analytically — the high-rate mirror of
	// workload.AppWorkload.ThinBelow. Zero or negative disables the tier.
	Above float64
	// RhoMax is the saturation guard; zero selects DefaultRhoMax.
	RhoMax float64
}

// Window is a half-open interval [Start, End) during which the analytic
// model must not be used — an effective fault-injection window, where tail
// behavior has to come from discrete sampling.
type Window struct {
	Start, End float64
}

// Segment is one precomputed stretch of the run with a fixed mode. Segment
// boundaries fall on curve hour marks (the population curve is linear
// inside an hour, making the per-segment mean rate exact) and on fault
// window edges; segments are contiguous and cover [0, +Inf), the last one
// parking the flow past the run window.
type Segment struct {
	Start, End float64
	// Fluid selects the analytic model for this segment; discrete segments
	// delegate to the wrapped workload's Lewis-Shedler sampler.
	Fluid bool
	// Crossover marks that entering this segment flipped the mode — the
	// calendar events the crossover series counts.
	Crossover bool
	// CrossBefore is the number of crossovers at or before Start.
	CrossBefore int

	// Analytic quantities, fluid segments only.
	Lambda    float64 // mean arrival rate over the segment, ops/second
	Rho       float64 // ceiling utilization at the bottleneck station
	Occupancy float64 // mean operations in system (L, Little's law)
	RespMean  float64 // station base + M/M/c mean wait, seconds
	RespP90   float64 // station base p90 + M/M/c wait p90, seconds
	// OpsStart is the cumulative analytic operation count completed before
	// Start; within a fluid segment the count grows linearly at Lambda.
	OpsStart float64
	// Reserve holds the capacity fraction withheld on each station tier
	// (parallel to Station.Tiers), sized by the segment's ceiling rate.
	Reserve []float64
}

// BuildSegments precomputes the mode schedule and analytic series for one
// workload over [0, duration). The curve must already be shifted into the
// run window (as experiment compilation does). A segment is fluid iff its
// ceiling expected arrivals per tick reach cfg.Above, its ceiling
// utilization at the station bottleneck stays strictly below the guard,
// and it overlaps no fault window.
func BuildSegments(users workload.Curve, opsPerUserHour, step, duration float64,
	cfg Config, st Station, faults []Window) ([]Segment, error) {
	if cfg.Above <= 0 {
		return nil, fmt.Errorf("fluid: threshold Above must be positive, got %v", cfg.Above)
	}
	rhoMax := cfg.RhoMax
	if rhoMax == 0 {
		rhoMax = DefaultRhoMax
	}
	if rhoMax <= 0 || rhoMax >= 1 {
		return nil, fmt.Errorf("fluid: saturation guard RhoMax %v outside (0, 1)", rhoMax)
	}
	if step <= 0 || duration <= 0 {
		return nil, fmt.Errorf("fluid: needs positive step and duration")
	}
	if st.Cores <= 0 || st.Mu <= 0 {
		return nil, fmt.Errorf("fluid: invalid station %+v", st)
	}

	edges := []float64{0}
	for t := 3600.0; t < duration; t += 3600 {
		edges = append(edges, t)
	}
	for _, w := range faults {
		for _, t := range []float64{w.Start, w.End} {
			if t > 0 && t < duration {
				edges = append(edges, t)
			}
		}
	}
	edges = append(edges, duration)
	sort.Float64s(edges)
	uniq := edges[:1]
	for _, t := range edges[1:] {
		if t > uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	edges = uniq

	perUser := opsPerUserHour / 3600
	segs := make([]Segment, 0, len(edges))
	ops := 0.0
	for i := 0; i+1 < len(edges); i++ {
		s, e := edges[i], edges[i+1]
		lamCeil := users.Ceiling(s, e) * perUser
		rhoCeil := lamCeil / (float64(st.Cores) * st.Mu)
		seg := Segment{Start: s, End: e, OpsStart: ops}
		if lamCeil*step >= cfg.Above && rhoCeil < rhoMax && !overlaps(s, e, faults) {
			// The population curve is linear inside each segment (edges
			// include every hour mark), so the endpoint mean is the exact
			// average rate and the ops integral below is exact.
			lam := (users.At(s) + users.At(e)) / 2 * perUser
			m := queueing.MMc{C: st.Cores, Lambda: lam, Mu: st.Mu}
			wq, err := m.MeanWait()
			if err != nil {
				return nil, fmt.Errorf("fluid: segment [%v, %v): %w", s, e, err)
			}
			wq90, err := m.WaitQuantile(0.90)
			if err != nil {
				return nil, fmt.Errorf("fluid: segment [%v, %v): %w", s, e, err)
			}
			seg.Fluid = true
			seg.Lambda = lam
			seg.Rho = rhoCeil
			seg.Occupancy = lam * (wq + 1/st.Mu)
			seg.RespMean = st.Base + wq
			seg.RespP90 = st.BaseP90 + wq90
			seg.Reserve = st.reserveFracs(lamCeil)
			ops += lam * (e - s)
		}
		segs = append(segs, seg)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Fluid != segs[i-1].Fluid {
			segs[i].Crossover = true
		}
		segs[i].CrossBefore = segs[i-1].CrossBefore
		if segs[i].Crossover {
			segs[i].CrossBefore++
		}
	}
	// Trailing discrete segment parks the flow past the run window. It is
	// never a crossover: the mode after the run ends is not an event.
	last := segs[len(segs)-1]
	segs = append(segs, Segment{
		Start: duration, End: math.Inf(1),
		OpsStart: ops, CrossBefore: last.CrossBefore,
	})
	return segs, nil
}

func overlaps(s, e float64, wins []Window) bool {
	for _, w := range wins {
		if w.Start < e && s < w.End {
			return true
		}
	}
	return false
}

// At returns the segment containing instant t.
func At(segs []Segment, t float64) *Segment {
	i := sort.Search(len(segs), func(i int) bool { return t < segs[i].End })
	if i >= len(segs) {
		i = len(segs) - 1
	}
	return &segs[i]
}

// OpsAt returns the cumulative analytic operation count at instant t —
// the exact integral of the fluid arrival rate over [0, t].
func OpsAt(segs []Segment, t float64) float64 {
	seg := At(segs, t)
	if seg.Fluid {
		return seg.OpsStart + seg.Lambda*(t-seg.Start)
	}
	return seg.OpsStart
}
