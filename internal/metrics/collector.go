package metrics

import (
	"fmt"
	"sort"
)

// Probe produces one sample per measurement window. window is the length of
// the elapsed window in simulated seconds; implementations typically divide
// accumulated busy time by the window to report utilization, matching the
// paper's averaged snapshots rather than point samples.
type Probe struct {
	Key    string
	Sample func(window float64) float64
}

// Collector periodically polls registered probes, building one Series per
// probe key. It mirrors the Collector Component of §4.3.1: intermediate
// samples inside a snapshot window are aggregated by the probes themselves
// (busy-time integration), and the snapshot is registered permanently.
type Collector struct {
	probes []Probe
	series map[string]*Series
	last   float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{series: make(map[string]*Series)}
}

// Register adds a probe. Registering two probes with the same key panics:
// their samples would interleave into one series and corrupt it.
func (c *Collector) Register(p Probe) {
	if p.Sample == nil {
		panic("metrics: probe without Sample function")
	}
	if _, dup := c.series[p.Key]; dup {
		panic(fmt.Sprintf("metrics: duplicate probe key %q", p.Key))
	}
	c.probes = append(c.probes, p)
	c.series[p.Key] = &Series{Name: p.Key}
}

// Snapshot polls every probe at simulated time now, closing the measurement
// window that started at the previous snapshot.
func (c *Collector) Snapshot(now float64) {
	window := now - c.last
	if window <= 0 {
		window = 1e-9
	}
	for _, p := range c.probes {
		c.series[p.Key].Add(now, p.Sample(window))
	}
	c.last = now
}

// Series returns the series recorded under key, or nil if unknown.
func (c *Collector) Series(key string) *Series { return c.series[key] }

// MustSeries returns the series recorded under key and panics when the key
// was never registered — reaching for an unknown metric is a caller bug.
func (c *Collector) MustSeries(key string) *Series {
	s := c.series[key]
	if s == nil {
		panic(fmt.Sprintf("metrics: unknown series %q", key))
	}
	return s
}

// Keys returns all registered probe keys in sorted order.
func (c *Collector) Keys() []string {
	keys := make([]string, 0, len(c.series))
	for k := range c.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
