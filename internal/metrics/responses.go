package metrics

import (
	"fmt"
	"sort"
)

// ResponseKey identifies a response-time population: one operation type
// observed from one data center, e.g. {"CAD OPEN", "AUS"}.
type ResponseKey struct {
	Op string
	DC string
}

// Responses accumulates operation response times, the simulator's primary
// user-experience output (§3.2.1): "estimates of the response time for each
// operation type and software application at each location".
type Responses struct {
	byKey map[ResponseKey]*Series
}

// NewResponses returns an empty response tracker.
func NewResponses() *Responses {
	return &Responses{byKey: make(map[ResponseKey]*Series)}
}

// Record stores one completed operation: completed is the simulated
// completion instant in seconds, dur the response time in seconds.
func (r *Responses) Record(op, dc string, completed, dur float64) {
	k := ResponseKey{Op: op, DC: dc}
	s := r.byKey[k]
	if s == nil {
		s = &Series{Name: op + "@" + dc}
		r.byKey[k] = s
	}
	s.Add(completed, dur)
}

// MergeInto appends every sample of r onto dst and empties r. It bypasses
// the Add ordering check: the caller guarantees that, per key, r's samples
// all postdate dst's (the stretched-span contract — each lane records a
// disjoint key set over a time range strictly after the merged history).
// Series capacity in r is retained for reuse.
func (r *Responses) MergeInto(dst *Responses) {
	for k, s := range r.byKey {
		if len(s.T) == 0 {
			continue
		}
		d := dst.byKey[k]
		if d == nil {
			d = &Series{Name: s.Name}
			dst.byKey[k] = d
		}
		d.T = append(d.T, s.T...)
		d.V = append(d.V, s.V...)
		s.T = s.T[:0]
		s.V = s.V[:0]
	}
}

// Series returns the response-time series for an operation at a data
// center, or nil when none was recorded.
func (r *Responses) Series(op, dc string) *Series {
	return r.byKey[ResponseKey{Op: op, DC: dc}]
}

// Mean returns the mean response time of op at dc over [t0, t1) seconds.
// ok is false when no completions fall in the window.
func (r *Responses) Mean(op, dc string, t0, t1 float64) (mean float64, ok bool) {
	s := r.Series(op, dc)
	if s == nil {
		return 0, false
	}
	w := s.Window(t0, t1)
	if len(w) == 0 {
		return 0, false
	}
	return Mean(w), true
}

// MeanAll returns the mean response time of op at dc over the whole run.
func (r *Responses) MeanAll(op, dc string) (float64, bool) {
	s := r.Series(op, dc)
	if s == nil || s.Len() == 0 {
		return 0, false
	}
	return Mean(s.V), true
}

// Max returns the maximum response time of op at dc over the whole run.
func (r *Responses) Max(op, dc string) (float64, bool) {
	s := r.Series(op, dc)
	if s == nil || s.Len() == 0 {
		return 0, false
	}
	_, v, _ := s.Max()
	return v, true
}

// Count returns the number of completions recorded for op at dc.
func (r *Responses) Count(op, dc string) int {
	s := r.Series(op, dc)
	if s == nil {
		return 0
	}
	return s.Len()
}

// Keys returns all recorded (op, dc) pairs, sorted for stable reports.
func (r *Responses) Keys() []ResponseKey {
	keys := make([]ResponseKey, 0, len(r.byKey))
	for k := range r.byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].DC != keys[j].DC {
			return keys[i].DC < keys[j].DC
		}
		return keys[i].Op < keys[j].Op
	})
	return keys
}

// HourlyMeans returns per-hour mean response times for op at dc, for the
// response-time-by-hour figures (6-15..6-20).
func (r *Responses) HourlyMeans(op, dc string, hours int) ([]float64, error) {
	s := r.Series(op, dc)
	if s == nil {
		return nil, fmt.Errorf("metrics: no responses recorded for %s at %s", op, dc)
	}
	return s.Hourly(hours), nil
}
