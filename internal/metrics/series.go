// Package metrics implements the measurement side of GDISim: the collector
// snapshots (§4.3.1), time series of hardware utilization, response-time
// tracking per operation and data center, and the statistics the thesis
// reports — steady-state mean and standard deviation (Eqs. 5.1-5.4) and the
// root-mean-square error between two series (Eq. 5.5).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Series is a time series of (simulated-seconds, value) samples in
// non-decreasing time order.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Add appends a sample. Samples must arrive in non-decreasing time order;
// out-of-order samples panic because they indicate a collector bug.
func (s *Series) Add(t, v float64) {
	if n := len(s.T); n > 0 && t < s.T[n-1] {
		panic(fmt.Sprintf("metrics: out-of-order sample %v after %v on %q", t, s.T[n-1], s.Name))
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Window returns the values with t0 <= t < t1.
func (s *Series) Window(t0, t1 float64) []float64 {
	lo := sort.SearchFloat64s(s.T, t0)
	hi := sort.SearchFloat64s(s.T, t1)
	return s.V[lo:hi]
}

// Mean returns the arithmetic mean of the samples in [t0, t1), as in
// Eq. 5.1/5.3. It returns 0 for an empty window.
func (s *Series) Mean(t0, t1 float64) float64 {
	return Mean(s.Window(t0, t1))
}

// Std returns the population standard deviation of the samples in [t0, t1),
// as in Eq. 5.2/5.4.
func (s *Series) Std(t0, t1 float64) float64 {
	return Std(s.Window(t0, t1))
}

// Max returns the maximum value and its time over the whole series.
// ok is false for an empty series.
func (s *Series) Max() (t, v float64, ok bool) {
	if len(s.V) == 0 {
		return 0, 0, false
	}
	t, v = s.T[0], s.V[0]
	for i := 1; i < len(s.V); i++ {
		if s.V[i] > v {
			t, v = s.T[i], s.V[i]
		}
	}
	return t, v, true
}

// At returns the last sample value at or before time t (zero-order hold),
// or 0 when t precedes the first sample.
func (s *Series) At(t float64) float64 {
	i := sort.SearchFloat64s(s.T, t)
	if i < len(s.T) && s.T[i] == t {
		return s.V[i]
	}
	if i == 0 {
		return 0
	}
	return s.V[i-1]
}

// Hourly aggregates the series into per-hour means over [0, hours) hours,
// matching the hour-of-day plots in Chapters 6-7.
func (s *Series) Hourly(hours int) []float64 {
	out := make([]float64, hours)
	for h := 0; h < hours; h++ {
		out[h] = s.Mean(float64(h)*3600, float64(h+1)*3600)
	}
	return out
}

// Mean returns the arithmetic mean of vs (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Std returns the population standard deviation of vs (0 for empty input).
func Std(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	m := Mean(vs)
	ss := 0.0
	for _, v := range vs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vs)))
}

// RMSE computes the root-mean-square error between a measured and a
// predicted series (Eq. 5.5), comparing the predicted value at each measured
// sample instant using zero-order hold. It errors on an empty reference.
func RMSE(reference, predicted *Series) (float64, error) {
	if reference.Len() == 0 {
		return 0, fmt.Errorf("metrics: RMSE reference series %q is empty", reference.Name)
	}
	ss := 0.0
	for i, t := range reference.T {
		d := reference.V[i] - predicted.At(t)
		ss += d * d
	}
	return math.Sqrt(ss / float64(reference.Len())), nil
}

// RMSEValues computes RMSE between two equal-length sample vectors.
func RMSEValues(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("metrics: RMSEValues needs equal non-empty lengths, got %d and %d", len(a), len(b))
	}
	ss := 0.0
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a))), nil
}
