package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAddAndWindow(t *testing.T) {
	s := &Series{Name: "x"}
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i)*2)
	}
	w := s.Window(2, 5)
	if len(w) != 3 || w[0] != 4 || w[2] != 8 {
		t.Errorf("Window(2,5) = %v", w)
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSeriesRejectsOutOfOrder(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add did not panic")
		}
	}()
	s.Add(0.5, 0)
}

func TestSeriesMeanStd(t *testing.T) {
	s := &Series{Name: "x"}
	for i, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(float64(i), v)
	}
	if m := s.Mean(0, 8); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if sd := s.Std(0, 8); math.Abs(sd-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", sd)
	}
}

func TestSeriesMax(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(0, 1)
	s.Add(1, 5)
	s.Add(2, 3)
	tm, v, ok := s.Max()
	if !ok || tm != 1 || v != 5 {
		t.Errorf("Max = (%v,%v,%v)", tm, v, ok)
	}
	var empty Series
	if _, _, ok := empty.Max(); ok {
		t.Error("empty Max should report !ok")
	}
}

func TestSeriesAtZeroOrderHold(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1, 10)
	s.Add(3, 30)
	cases := []struct{ t, want float64 }{
		{0.5, 0}, {1, 10}, {2, 10}, {3, 30}, {99, 30},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSeriesHourly(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(600, 1)   // hour 0
	s.Add(1800, 3)  // hour 0
	s.Add(4000, 10) // hour 1
	h := s.Hourly(3)
	if h[0] != 2 || h[1] != 10 || h[2] != 0 {
		t.Errorf("Hourly = %v", h)
	}
}

func TestRMSE(t *testing.T) {
	ref := &Series{Name: "ref"}
	pred := &Series{Name: "pred"}
	for i := 0; i < 4; i++ {
		ref.Add(float64(i), 1)
		pred.Add(float64(i), 2)
	}
	got, err := RMSE(ref, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("RMSE = %v, want 1", got)
	}
	if _, err := RMSE(&Series{Name: "empty"}, pred); err == nil {
		t.Error("RMSE on empty reference should error")
	}
}

func TestRMSEValues(t *testing.T) {
	got, err := RMSEValues([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((9.0 + 16.0) / 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSEValues = %v, want %v", got, want)
	}
	if _, err := RMSEValues(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := RMSEValues([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

// Property: RMSE is zero iff the series agree at reference instants, and is
// symmetric under exchanging equal-time-base series.
func TestRMSEProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 50 {
			return true
		}
		a := &Series{Name: "a"}
		b := &Series{Name: "b"}
		for i, r := range raw {
			a.Add(float64(i), float64(r))
			b.Add(float64(i), float64(r))
		}
		same, err := RMSE(a, b)
		if err != nil || same != 0 {
			return false
		}
		ab, _ := RMSEValues(a.V, b.V)
		ba, _ := RMSEValues(b.V, a.V)
		return ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	busy := 0.0
	c.Register(Probe{Key: "cpu", Sample: func(window float64) float64 {
		u := busy / window
		busy = 0
		return u
	}})
	busy = 5
	c.Snapshot(10)
	busy = 2
	c.Snapshot(20)
	s := c.MustSeries("cpu")
	if s.Len() != 2 {
		t.Fatalf("series len = %d", s.Len())
	}
	if math.Abs(s.V[0]-0.5) > 1e-12 || math.Abs(s.V[1]-0.2) > 1e-12 {
		t.Errorf("utilizations = %v", s.V)
	}
}

func TestCollectorDuplicateKeyPanics(t *testing.T) {
	c := NewCollector()
	c.Register(Probe{Key: "x", Sample: func(float64) float64 { return 0 }})
	defer func() {
		if recover() == nil {
			t.Error("duplicate key did not panic")
		}
	}()
	c.Register(Probe{Key: "x", Sample: func(float64) float64 { return 0 }})
}

func TestCollectorUnknownSeriesPanics(t *testing.T) {
	c := NewCollector()
	if c.Series("nope") != nil {
		t.Error("Series on unknown key should return nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSeries on unknown key did not panic")
		}
	}()
	c.MustSeries("nope")
}

func TestResponses(t *testing.T) {
	r := NewResponses()
	r.Record("OPEN", "NA", 100, 30)
	r.Record("OPEN", "NA", 200, 40)
	r.Record("OPEN", "EU", 150, 35)
	if m, ok := r.MeanAll("OPEN", "NA"); !ok || m != 35 {
		t.Errorf("MeanAll = %v,%v", m, ok)
	}
	if mx, ok := r.Max("OPEN", "NA"); !ok || mx != 40 {
		t.Errorf("Max = %v,%v", mx, ok)
	}
	if n := r.Count("OPEN", "EU"); n != 1 {
		t.Errorf("Count = %d", n)
	}
	if _, ok := r.Mean("OPEN", "NA", 0, 50); ok {
		t.Error("Mean over empty window should report !ok")
	}
	keys := r.Keys()
	if len(keys) != 2 || keys[0].DC != "EU" {
		t.Errorf("Keys = %v", keys)
	}
	if _, err := r.HourlyMeans("SAVE", "NA", 24); err == nil {
		t.Error("HourlyMeans on unknown op should error")
	}
	h, err := r.HourlyMeans("OPEN", "NA", 1)
	if err != nil || h[0] != 35 {
		t.Errorf("HourlyMeans = %v err=%v", h, err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Table X", Headers: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333")
	out := tb.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "333") {
		t.Errorf("table output missing content:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized row did not panic")
		}
	}()
	tb.AddRow("1", "2", "3")
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("Sparkline(nil) = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(got)) != 4 {
		t.Errorf("Sparkline length = %d", len([]rune(got)))
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Errorf("flat sparkline = %q", flat)
	}
}
