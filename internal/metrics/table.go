package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table renders the text tables that the cmd/ binaries print when
// regenerating the thesis' tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the header count panic, shorter rows
// are padded.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("metrics: row with %d cells exceeds %d headers", len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Fprint writes the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// FprintSeries writes a series as two aligned columns (time in hours,
// value), the textual stand-in for the thesis' figures.
func FprintSeries(w io.Writer, title string, s *Series, valueFmt string) {
	fmt.Fprintln(w, title)
	for i := range s.T {
		fmt.Fprintf(w, "  %8.3fh  "+valueFmt+"\n", s.T[i]/3600, s.V[i])
	}
}

// Sparkline renders values as a compact unicode sparkline, handy for
// eyeballing diurnal curves in terminal output.
func Sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range vs {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
