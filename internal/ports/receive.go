package ports

import (
	"sync"
	"sync/atomic"
)

// Coordination primitives (§4.2.3). These correspond one-to-one to the CCR
// primitives listed in the thesis: Single Item Receiver, Multiple Item
// Receiver, Join Receiver, Choice and Interleave.

// Receive registers handler to run for messages arriving on the port — the
// Single Item Receiver. With persistent=false the handler runs for exactly
// one message; with persistent=true it runs for every message.
func Receive[T any](p *Port[T], persistent bool, handler func(T)) {
	p.register(&receiver[T]{persistent: persistent, deliver: handler})
}

// MultipleItemReceive registers handler to be launched once n messages have
// accumulated across the success port (type M) and the failure port (type
// E), with p+q = n — the Multiple Item Receiver used by the Gather phase of
// Scatter-Gather (Fig. 4-2). The handler receives both payload slices.
func MultipleItemReceive[M, E any](success *Port[M], failure *Port[E], n int, handler func([]M, []E)) {
	if n <= 0 {
		panic("ports: MultipleItemReceive needs n > 0")
	}
	c := &multiCollector[M, E]{n: n, handler: handler}
	Receive(success, true, c.onSuccess)
	if failure != nil {
		Receive(failure, true, c.onFailure)
	}
}

type multiCollector[M, E any] struct {
	mu       sync.Mutex
	n        int
	oks      []M
	errs     []E
	handler  func([]M, []E)
	finished bool
}

func (c *multiCollector[M, E]) onSuccess(m M) {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	c.oks = append(c.oks, m)
	c.maybeFireLocked()
}

func (c *multiCollector[M, E]) onFailure(e E) {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	c.errs = append(c.errs, e)
	c.maybeFireLocked()
}

// maybeFireLocked must be entered holding c.mu; it releases it.
func (c *multiCollector[M, E]) maybeFireLocked() {
	if len(c.oks)+len(c.errs) >= c.n {
		oks, errs := c.oks, c.errs
		c.finished = true
		c.mu.Unlock()
		c.handler(oks, errs)
		return
	}
	c.mu.Unlock()
}

// Join registers handler to be launched when one message has arrived on
// each of the two ports — the Join Receiver. One-shot.
func Join[A, B any](pa *Port[A], pb *Port[B], handler func(A, B)) {
	j := &joiner[A, B]{handler: handler}
	Receive(pa, false, j.onA)
	Receive(pb, false, j.onB)
}

type joiner[A, B any] struct {
	mu      sync.Mutex
	a       *A
	b       *B
	handler func(A, B)
}

func (j *joiner[A, B]) onA(a A) {
	j.mu.Lock()
	j.a = &a
	j.fireLocked()
}

func (j *joiner[A, B]) onB(b B) {
	j.mu.Lock()
	j.b = &b
	j.fireLocked()
}

// fireLocked must be entered holding j.mu; it releases it.
func (j *joiner[A, B]) fireLocked() {
	if j.a != nil && j.b != nil {
		a, b := *j.a, *j.b
		j.mu.Unlock()
		j.handler(a, b)
		return
	}
	j.mu.Unlock()
}

// Choice registers handlerA on port A and handlerB on port B; whichever
// port receives a message first wins and the other registration is
// cancelled atomically. One-shot.
func Choice[A, B any](pa *Port[A], handlerA func(A), pb *Port[B], handlerB func(B)) {
	var decided atomic.Bool
	claim := func() bool { return decided.CompareAndSwap(false, true) }
	pa.register(&receiver[A]{claim: claim, deliver: handlerA})
	pb.register(&receiver[B]{claim: claim, deliver: handlerB})
}

// Interleave groups handler executions the way the CCR interleave arbiter
// does (§4.2.3): Concurrent handlers run in parallel with each other,
// Exclusive handlers run alone, and Teardown handlers run alone exactly
// once, after which the interleave rejects further work.
type Interleave struct {
	mu       sync.RWMutex
	torndown atomic.Bool
}

// NewInterleave returns a ready-to-use interleave policy.
func NewInterleave() *Interleave { return &Interleave{} }

// Concurrent wraps a handler into the concurrent group of the interleave.
func Concurrent[T any](il *Interleave, handler func(T)) func(T) {
	return func(msg T) {
		il.mu.RLock()
		defer il.mu.RUnlock()
		if il.torndown.Load() {
			return
		}
		handler(msg)
	}
}

// Exclusive wraps a handler into the exclusive group of the interleave.
func Exclusive[T any](il *Interleave, handler func(T)) func(T) {
	return func(msg T) {
		il.mu.Lock()
		defer il.mu.Unlock()
		if il.torndown.Load() {
			return
		}
		handler(msg)
	}
}

// Teardown wraps a handler into the teardown group: it runs atomically, at
// most once, and permanently disables the interleave afterwards.
func Teardown[T any](il *Interleave, handler func(T)) func(T) {
	return func(msg T) {
		il.mu.Lock()
		defer il.mu.Unlock()
		if !il.torndown.CompareAndSwap(false, true) {
			return
		}
		handler(msg)
	}
}
