// Package ports implements the asynchronous messaging substrate of GDISim
// (§4.2): active messages, port-based programming and the coordination
// primitives of the Concurrency and Coordination Runtime (CCR) that the
// original C# implementation was built on.
//
// A Port is a typed entry point to an agent's state. Posting a message pairs
// it with the handler registered on the port (the "arbiter" step) into a
// work item — an active message — which a Dispatcher executes on a fixed
// thread pool. Handlers never block; coordination is expressed with the
// primitives in receive.go (single/multiple item receivers, join, choice,
// interleave).
package ports

import (
	"fmt"
	"sync"
)

// WorkItem is an active message: a closure pairing a message payload with
// the handler to execute on arrival (§4.2.1). Work items run on the stack of
// the dispatcher thread that pulls them, exactly as the paper describes.
type WorkItem func()

// Dispatcher executes work items on a fixed pool of worker goroutines
// draining a shared dispatcher queue (Fig. 4-1).
type Dispatcher struct {
	queue chan WorkItem
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewDispatcher creates a dispatcher with the given number of worker
// threads and queue capacity. It panics on a non-positive thread count.
func NewDispatcher(threads, backlog int) *Dispatcher {
	if threads <= 0 {
		panic(fmt.Sprintf("ports: dispatcher needs threads > 0, got %d", threads))
	}
	if backlog < 1 {
		backlog = 1
	}
	d := &Dispatcher{queue: make(chan WorkItem, backlog)}
	d.wg.Add(threads)
	for i := 0; i < threads; i++ {
		go d.worker()
	}
	return d
}

func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for item := range d.queue {
		item()
	}
}

// Submit enqueues a work item, blocking if the dispatcher queue is full.
// Submitting to a shut-down dispatcher panics: it indicates a lifecycle bug
// in the caller.
func (d *Dispatcher) Submit(item WorkItem) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		panic("ports: submit on shut-down dispatcher")
	}
	d.mu.Unlock()
	d.queue <- item
}

// Shutdown stops accepting work and waits for queued items to finish.
// It is idempotent.
func (d *Dispatcher) Shutdown() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	close(d.queue)
	d.wg.Wait()
}
