package ports

import "sync"

// Port is a strongly-typed message entry point (§4.2.2). Messages posted to
// the port are paired with registered receivers by the built-in arbiter and
// submitted to the dispatcher for execution. When no receiver is waiting,
// messages buffer in arrival order; when no message is available, receivers
// queue in registration order.
type Port[T any] struct {
	disp *Dispatcher

	mu    sync.Mutex
	msgs  []T
	recvs []*receiver[T]
}

// receiver pairs a delivery function with arbitration state. claim allows
// composite arbiters (Choice) to atomically decide whether this receiver is
// still eligible; a receiver whose claim fails is discarded and the message
// is offered to the next receiver or re-buffered.
type receiver[T any] struct {
	persistent bool
	claim      func() bool
	deliver    func(T)
}

// NewPort creates a port bound to a dispatcher.
func NewPort[T any](d *Dispatcher) *Port[T] {
	if d == nil {
		panic("ports: NewPort requires a dispatcher")
	}
	return &Port[T]{disp: d}
}

// Post sends a message to the port. If a receiver is registered the message
// becomes a work item immediately; otherwise it buffers.
func (p *Port[T]) Post(msg T) {
	p.mu.Lock()
	for len(p.recvs) > 0 {
		r := p.recvs[0]
		if r.claim != nil && !r.claim() {
			// Receiver was cancelled by its arbiter (e.g. lost a Choice);
			// drop it and try the next one.
			p.recvs = p.recvs[1:]
			continue
		}
		if !r.persistent {
			p.recvs = p.recvs[1:]
		}
		p.mu.Unlock()
		p.disp.Submit(func() { r.deliver(msg) })
		return
	}
	p.msgs = append(p.msgs, msg)
	p.mu.Unlock()
}

// Pending reports the number of buffered messages.
func (p *Port[T]) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.msgs)
}

// register attaches a receiver, draining any buffered messages first.
func (p *Port[T]) register(r *receiver[T]) {
	p.mu.Lock()
	for len(p.msgs) > 0 {
		if r.claim != nil && !r.claim() {
			p.mu.Unlock()
			return
		}
		msg := p.msgs[0]
		p.msgs = p.msgs[1:]
		p.mu.Unlock()
		p.disp.Submit(func() { r.deliver(msg) })
		if !r.persistent {
			return
		}
		p.mu.Lock()
	}
	p.recvs = append(p.recvs, r)
	p.mu.Unlock()
}
