package ports

import "sync"

// Gather collects a fixed number of acknowledgement messages and lets the
// master thread block until all of them have arrived — the Gather half of
// the Scatter-Gather mechanism (Fig. 4-2). Scattering is plain: the master
// posts one message per agent port, embedding g.Port() in the payload so
// handlers know where to acknowledge.
//
// A Gather is reusable: after Wait returns, Reset re-arms it for the next
// round on the same port, so a per-tick sweep allocates nothing. The
// Reset/Wait cycle must be driven by a single master goroutine.
type Gather[A any] struct {
	port *Port[A]
	done chan struct{}

	mu   sync.Mutex
	want int
	acks []A
}

// NewGather returns a gatherer expecting n acknowledgements on its port.
func NewGather[A any](d *Dispatcher, n int) *Gather[A] {
	if n <= 0 {
		panic("ports: NewGather needs n > 0")
	}
	g := &Gather[A]{port: NewPort[A](d), done: make(chan struct{}, 1), want: n}
	Receive(g.port, true, g.collect)
	return g
}

func (g *Gather[A]) collect(a A) {
	g.mu.Lock()
	g.acks = append(g.acks, a)
	full := len(g.acks) == g.want
	g.mu.Unlock()
	if full {
		g.done <- struct{}{}
	}
}

// Reset re-arms the gatherer for a round of n acknowledgements. It must
// only be called after the previous round's Wait returned (or before any
// message was scattered).
func (g *Gather[A]) Reset(n int) {
	if n <= 0 {
		panic("ports: Gather.Reset needs n > 0")
	}
	g.mu.Lock()
	g.want = n
	g.acks = g.acks[:0]
	g.mu.Unlock()
}

// Port returns the acknowledgement port to embed in scattered messages.
func (g *Gather[A]) Port() *Port[A] { return g.port }

// Wait blocks until all acknowledgements arrived and returns them. The
// returned slice is only valid until the next Reset.
func (g *Gather[A]) Wait() []A {
	<-g.done
	return g.acks
}
