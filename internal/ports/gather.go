package ports

// Gather collects a fixed number of acknowledgement messages and lets the
// master thread block until all of them have arrived — the Gather half of
// the Scatter-Gather mechanism (Fig. 4-2). Scattering is plain: the master
// posts one message per agent port, embedding g.Port() in the payload so
// handlers know where to acknowledge.
type Gather[A any] struct {
	port *Port[A]
	done chan []A
}

// NewGather returns a gatherer expecting n acknowledgements on its port.
func NewGather[A any](d *Dispatcher, n int) *Gather[A] {
	g := &Gather[A]{port: NewPort[A](d), done: make(chan []A, 1)}
	MultipleItemReceive(g.port, (*Port[error])(nil), n, func(acks []A, _ []error) {
		g.done <- acks
	})
	return g
}

// Port returns the acknowledgement port to embed in scattered messages.
func (g *Gather[A]) Port() *Port[A] { return g.port }

// Wait blocks until all acknowledgements arrived and returns them.
func (g *Gather[A]) Wait() []A { return <-g.done }
