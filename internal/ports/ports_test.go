package ports

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDispatcherRunsWork(t *testing.T) {
	d := NewDispatcher(4, 16)
	defer d.Shutdown()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		d.Submit(func() { n.Add(1); wg.Done() })
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Errorf("ran %d items, want 100", n.Load())
	}
}

func TestDispatcherShutdownIdempotent(t *testing.T) {
	d := NewDispatcher(1, 1)
	d.Shutdown()
	d.Shutdown() // must not panic
}

func TestDispatcherSubmitAfterShutdownPanics(t *testing.T) {
	d := NewDispatcher(1, 1)
	d.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("Submit after Shutdown did not panic")
		}
	}()
	d.Submit(func() {})
}

func TestNewDispatcherPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDispatcher(0,..) did not panic")
		}
	}()
	NewDispatcher(0, 1)
}

func TestPortBuffersUntilReceiverRegistered(t *testing.T) {
	d := NewDispatcher(2, 16)
	defer d.Shutdown()
	p := NewPort[int](d)
	p.Post(1)
	p.Post(2)
	if p.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", p.Pending())
	}
	got := make(chan int, 2)
	Receive(p, true, func(v int) { got <- v })
	if a, b := <-got, <-got; a != 1 || b != 2 {
		t.Errorf("delivery order = %d,%d want 1,2", a, b)
	}
	if p.Pending() != 0 {
		t.Errorf("pending after drain = %d", p.Pending())
	}
}

func TestSingleItemReceiverIsOneShot(t *testing.T) {
	d := NewDispatcher(2, 16)
	defer d.Shutdown()
	p := NewPort[int](d)
	var count atomic.Int64
	fired := make(chan struct{}, 1)
	Receive(p, false, func(int) { count.Add(1); fired <- struct{}{} })
	p.Post(1)
	<-fired
	p.Post(2)
	time.Sleep(20 * time.Millisecond)
	if count.Load() != 1 {
		t.Errorf("one-shot receiver fired %d times", count.Load())
	}
	if p.Pending() != 1 {
		t.Errorf("second message should buffer, pending=%d", p.Pending())
	}
}

func TestMultipleItemReceive(t *testing.T) {
	d := NewDispatcher(4, 64)
	defer d.Shutdown()
	okPort := NewPort[int](d)
	errPort := NewPort[error](d)
	done := make(chan struct{})
	MultipleItemReceive(okPort, errPort, 5, func(oks []int, errs []error) {
		if len(oks)+len(errs) != 5 {
			t.Errorf("batch size %d+%d, want 5", len(oks), len(errs))
		}
		close(done)
	})
	for i := 0; i < 4; i++ {
		okPort.Post(i)
	}
	errPort.Post(errTest("boom"))
	<-done
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestJoinFiresOnBothMessages(t *testing.T) {
	d := NewDispatcher(2, 16)
	defer d.Shutdown()
	pa := NewPort[int](d)
	pb := NewPort[string](d)
	got := make(chan string, 1)
	Join(pa, pb, func(a int, b string) { got <- b })
	pa.Post(1)
	select {
	case <-got:
		t.Fatal("join fired with only one message")
	case <-time.After(10 * time.Millisecond):
	}
	pb.Post("hello")
	if v := <-got; v != "hello" {
		t.Errorf("join payload = %q", v)
	}
}

func TestChoiceOnlyOneBranchFires(t *testing.T) {
	d := NewDispatcher(4, 16)
	defer d.Shutdown()
	pa := NewPort[int](d)
	pb := NewPort[int](d)
	var aFired, bFired atomic.Int64
	fired := make(chan struct{}, 2)
	Choice(pa,
		func(int) { aFired.Add(1); fired <- struct{}{} },
		pb,
		func(int) { bFired.Add(1); fired <- struct{}{} })
	pa.Post(1)
	pb.Post(2)
	<-fired
	time.Sleep(20 * time.Millisecond)
	if aFired.Load()+bFired.Load() != 1 {
		t.Errorf("choice fired %d branches, want exactly 1", aFired.Load()+bFired.Load())
	}
	// The losing message must remain available for future receivers.
	if pa.Pending()+pb.Pending() != 1 {
		t.Errorf("losing message lost: pending a=%d b=%d", pa.Pending(), pb.Pending())
	}
}

func TestInterleaveExclusiveBlocksConcurrent(t *testing.T) {
	d := NewDispatcher(8, 64)
	defer d.Shutdown()
	il := NewInterleave()
	p := NewPort[int](d)
	var inExclusive atomic.Bool
	var violation atomic.Bool
	var wg sync.WaitGroup

	conc := Concurrent(il, func(int) {
		if inExclusive.Load() {
			violation.Store(true)
		}
		wg.Done()
	})
	excl := Exclusive(il, func(int) {
		inExclusive.Store(true)
		time.Sleep(5 * time.Millisecond)
		inExclusive.Store(false)
		wg.Done()
	})
	Receive(p, true, func(v int) {
		if v == 0 {
			excl(v)
		} else {
			conc(v)
		}
	})
	wg.Add(21)
	p.Post(0)
	for i := 1; i <= 20; i++ {
		p.Post(i)
	}
	wg.Wait()
	if violation.Load() {
		t.Error("concurrent handler ran while exclusive handler was active")
	}
}

func TestInterleaveTeardownRunsOnceAndDisables(t *testing.T) {
	il := NewInterleave()
	var runs, after atomic.Int64
	td := Teardown(il, func(int) { runs.Add(1) })
	td(1)
	td(2)
	if runs.Load() != 1 {
		t.Errorf("teardown ran %d times, want 1", runs.Load())
	}
	c := Concurrent(il, func(int) { after.Add(1) })
	c(3)
	if after.Load() != 0 {
		t.Error("concurrent handler ran after teardown")
	}
}

func TestGatherScatterRound(t *testing.T) {
	d := NewDispatcher(4, 256)
	defer d.Shutdown()
	type tick struct {
		n   int
		ack *Port[int]
	}
	const agents = 50
	agentPorts := make([]*Port[tick], agents)
	for i := range agentPorts {
		i := i
		agentPorts[i] = NewPort[tick](d)
		Receive(agentPorts[i], true, func(m tick) { m.ack.Post(i) })
	}
	for round := 0; round < 3; round++ {
		g := NewGather[int](d, agents)
		for _, p := range agentPorts {
			p.Post(tick{n: round, ack: g.Port()})
		}
		acks := g.Wait()
		if len(acks) != agents {
			t.Fatalf("round %d gathered %d acks, want %d", round, len(acks), agents)
		}
	}
}

// TestGatherReuseWithReset drives one gatherer through many rounds of
// varying width — the allocation-free per-tick pattern of the
// Scatter-Gather engine's sweep.
func TestGatherReuseWithReset(t *testing.T) {
	d := NewDispatcher(4, 256)
	defer d.Shutdown()
	type tick struct {
		ack *Port[int]
	}
	const agents = 40
	agentPorts := make([]*Port[tick], agents)
	for i := range agentPorts {
		i := i
		agentPorts[i] = NewPort[tick](d)
		Receive(agentPorts[i], true, func(m tick) { m.ack.Post(i) })
	}
	g := NewGather[int](d, agents)
	for round := 0; round < 5; round++ {
		n := agents - round*7 // shrinking active subsets
		if round > 0 {
			g.Reset(n)
		}
		for _, p := range agentPorts[:n] {
			p.Post(tick{ack: g.Port()})
		}
		acks := g.Wait()
		if len(acks) != n {
			t.Fatalf("round %d gathered %d acks, want %d", round, len(acks), n)
		}
	}
}
