package gdisim

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// facadeSpec is a minimal public-API infrastructure.
func facadeSpec() InfraSpec {
	return InfraSpec{
		DCs: []DCSpec{{
			Name: "NA", SwitchGbps: 20,
			ClientLink: LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []TierSpec{{
				Name: "app", Servers: 2,
				Server: ServerSpec{
					CPU:     CPUSpec{Sockets: 1, Cores: 8, GHz: 2.5},
					MemGB:   32,
					NICGbps: 10,
					RAID: &RAIDSpec{
						Disks: 2, Disk: DiskSpec{CtrlGbps: 4, MBps: 150},
						CtrlGbps: 4,
					},
				},
				LocalLink: LinkSpec{Gbps: 10, LatencyMS: 0.45},
			}},
		}},
		Clients: map[string]ClientSpec{
			"NA": {Slots: 16, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
}

func facadeOp() Op {
	return SeqOp("PING",
		Msg{From: End{Role: RoleClient}, To: End{Role: RoleApp, Site: SiteMaster},
			Cost: Cost{CPUCycles: 2.5e8, NetBytes: 2e4}},
		Msg{From: End{Role: RoleApp, Site: SiteMaster}, To: End{Role: RoleClient},
			Cost: Cost{NetBytes: 1e5}},
	)
}

// TestPublicAPIEndToEnd drives the whole public surface: build, estimate,
// workload, run, metrics, export.
func TestPublicAPIEndToEnd(t *testing.T) {
	sim := NewSimulation(SimConfig{Step: 0.01, Seed: 5})
	defer sim.Shutdown()
	inf, err := Build(sim, facadeSpec())
	if err != nil {
		t.Fatal(err)
	}
	inf.RegisterProbes(sim.Collector)
	na := inf.DC("NA")

	op := facadeOp()
	iso, err := EstimateOp(op, NewBinding(inf, na, na), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if iso <= 0 || iso > 1 {
		t.Errorf("isolated estimate = %v", iso)
	}

	sim.AddSource(&AppWorkload{
		App: "SMOKE", DC: "NA",
		Users:          BusinessDay(120, 0, 24, 120),
		OpsPerUserHour: 30,
		Ops:            []Op{op},
		APM:            SingleMaster([]string{"NA"}, "NA"),
		Inf:            inf,
	})
	sim.RunFor(300)

	if n := sim.Responses.Count("SMOKE PING", "NA"); n < 100 {
		t.Errorf("completions = %d, want ~300", n)
	}
	util := sim.Collector.MustSeries("cpu:NA:app").Mean(0, 300)
	if util <= 0 || util > 0.5 {
		t.Errorf("app util = %v", util)
	}

	var buf bytes.Buffer
	if err := ExportSeriesCSV(&buf, CollectorSeries(sim.Collector)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cpu:NA:app") {
		t.Error("CSV export missing series")
	}
}

// TestPublicAPIEngines swaps in both parallel engines through the facade.
func TestPublicAPIEngines(t *testing.T) {
	for _, mk := range []func() Engine{
		func() Engine { return NewScatterGather(4) },
		func() Engine { return NewHDispatch(4, 0) },
	} {
		sim := NewSimulation(SimConfig{Step: 0.01, Seed: 5, Engine: mk()})
		inf, err := Build(sim, facadeSpec())
		if err != nil {
			t.Fatal(err)
		}
		na := inf.DC("NA")
		run, err := Instantiate(facadeOp(), NewBinding(inf, na, na))
		if err != nil {
			t.Fatal(err)
		}
		started := false
		sim.AddSource(SourceFunc(func(s *Simulation, now float64) {
			if !started {
				started = true
				s.StartOp(run)
			}
		}))
		if err := sim.RunUntilIdle(10); err != nil {
			t.Fatal(err)
		}
		if sim.Responses.Count("PING", "NA") != 1 {
			t.Error("operation did not complete under parallel engine")
		}
		sim.Shutdown()
	}
}

// TestScenarioDocumentRoundTrip saves and reloads a scenario document via
// the facade.
func TestScenarioDocumentRoundTrip(t *testing.T) {
	doc := &ScenarioDocument{
		Name:           "facade",
		Infrastructure: facadeSpec(),
		Workloads: []WorkloadSpec{{
			App: "CAD", DC: "NA", Users: BusinessDay(50, 13, 22, 2), OpsPerUserHour: 4,
		}},
	}
	path := filepath.Join(t.TempDir(), "doc.json")
	if err := doc.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workloads[0].Users.Peak() != 50 {
		t.Errorf("round-trip peak = %v", back.Workloads[0].Users.Peak())
	}
}

// TestAnalyticHelpers exercises the capacity-planning exports.
func TestAnalyticHelpers(t *testing.T) {
	p, err := ErlangC(1, 0.5)
	if err != nil || p != 0.5 {
		t.Errorf("ErlangC = %v, %v", p, err)
	}
	c, err := RequiredServers(3, 1, 0.5)
	if err != nil || c < 4 {
		t.Errorf("RequiredServers = %v, %v", c, err)
	}
	m := MMc{C: 2, Lambda: 1, Mu: 1}
	if u := m.Utilization(); u != 0.5 {
		t.Errorf("Utilization = %v", u)
	}
}

// TestValidationScenarioViaFacade runs a shortened Chapter 5 experiment
// through the public entry point.
func TestValidationScenarioViaFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run skipped in -short")
	}
	res, err := RunValidation(ValidationConfig{
		Experiment: 0, Seed: 1,
		LaunchFor: 300, RunFor: 360, SteadyStart: 120, SteadyEnd: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyMean["app"] <= 0 {
		t.Error("no app utilization measured")
	}
}
