// Package gdisim is a Go reproduction of GDISim, the Global Data
// Infrastructure Simulator of "Large-Scale Simulator for Global Data
// Infrastructure Optimization" (Herrero-López, CLUSTER 2011 / MIT thesis).
//
// GDISim evaluates the performance, availability and reliability of
// global, multi-data-center IT infrastructures. Hardware components are
// modeled as queueing networks (CPUs as p x M/M/q FCFS, links as M/M/1/k
// PS, RAID and SAN as fork-join structures), aggregated into holons
// (server, tier, data center); software applications are modeled as
// message cascades whose messages carry hardware-agnostic cost arrays
// R = (CPU cycles, network bytes, memory bytes, disk bytes). A discrete
// time loop drives the agents with in-flight work (active-set scheduling)
// and fast-forwards the clock across provably quiet stretches, with jump
// sizing and poll scheduling read off an indexed event calendar in
// O(changed agents) per iteration (see DESIGN.md) — all bit-identical to
// the plain tick-by-tick loop — parallelized with either the classic
// Scatter-Gather mechanism or the H-Dispatch pull model of Chapter 4.
// Sparse client workloads sample thinned inter-arrival gaps instead of
// per-tick Poisson draws, so low-traffic hours fast-forward too
// (distribution-identical; SimConfig.NoThinning restores bit-identity).
//
// # Quick start
//
// The primary entry point is the declarative experiment surface: one
// Experiment value describes the infrastructure, the workloads, the run
// window, the engine and the seed, and Run compiles and executes it into a
// uniform Result of series, response tables and run statistics:
//
//	e, err := gdisim.NewExperiment("what-if",
//		gdisim.WithInfra(spec),            // data centers, tiers, WAN
//		gdisim.WithWindow(9, 17),          // GMT business-hours window
//		gdisim.WithSeed(1),
//		gdisim.WithAccessMatrix(gdisim.SingleMaster(dcs, "NA")),
//		gdisim.WithWorkload(gdisim.ExperimentWorkload{
//			App: "PDM", DC: "NA",
//			Users:          gdisim.BusinessDay(500, 9, 17, 25),
//			OpsPerUserHour: 8,
//			Ops:            ops, // cascade operations (gdisim.SeqOp, ...)
//			Gauges:         true,
//		}),
//	)
//	res, err := e.Run()
//	fmt.Println(res.Stats.CompletedOps, res.Series["cpu:NA:app"].Mean(0, 8*3600))
//
// On top of a single experiment, NewSweep expands a parameter grid into
// independent simulations fanned out across a worker pool, each point
// seeded by SplitMix64 derivation so results are bit-identical regardless
// of worker count:
//
//	sr, err := gdisim.NewSweep("capacity", base).
//		Vary("dcs.NA.app.cores", 8, 16, 32).
//		Vary("wan.NA-EU.mbps", 45, 155).
//		Run(0) // 0 = one worker per CPU
//	sr.WriteCSV(os.Stdout)
//
// JSON scenario documents (gdisim.LoadScenario) compile to the same
// Experiment type through ExperimentFromDocument — one surface whether the
// scenario comes from Go code or a document; `gdisim -doc file.json
// [-sweep path=v1,v2 ...]` is the CLI for it.
//
// The thesis' evaluations are packaged as ready-made scenarios built on
// the experiment API: RunValidation (Chapter 5), NewConsolidation
// (Chapter 6), NewMultiMaster (Chapter 7) and RunDayNight. See
// cmd/validate, cmd/consolidate and cmd/multimaster for complete
// table/figure regeneration.
package gdisim

import (
	"io"

	"repro/internal/background"
	"repro/internal/cascade"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/queueing"
	"repro/internal/scenarios"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Experiment API: the declarative scenario surface and the sweep runner.
type (
	// Experiment is a complete, runnable scenario description assembled
	// from functional options (see NewExperiment).
	Experiment = experiment.Experiment
	// ExperimentOption mutates an experiment under assembly.
	ExperimentOption = experiment.Option
	// ExperimentWorkload declares one application workload at one DC.
	ExperimentWorkload = experiment.Workload
	// ExperimentDaemons declares the background daemons per master DC.
	ExperimentDaemons = experiment.Daemons
	// ExperimentRun is a compiled experiment ready for time to advance.
	ExperimentRun = experiment.Run
	// ExperimentResult is the uniform harvest of one experiment run.
	ExperimentResult = experiment.Result
	// LoopFlags carries the time-loop A/B switches.
	LoopFlags = experiment.LoopFlags
	// Sweep expands a parameter grid into concurrent independent runs.
	Sweep = experiment.Sweep
	// SweepResult aggregates a sweep run with per-point rows.
	SweepResult = experiment.SweepResult
	// SweepVariant is one point of a VaryFunc mutator axis.
	SweepVariant = experiment.Variant
	// SweepColumn is one metric column of the sweep CSV export.
	SweepColumn = experiment.Column
	// FluidConfig parameterizes the fluid workload tier for one workload
	// (see WithFluid and DESIGN.md, "Fluid workload tier").
	FluidConfig = experiment.Fluid
	// RunStats is the run-counter snapshot carried by every Result.
	RunStats = core.RunStats
)

// NewExperiment assembles an experiment from options and validates it.
func NewExperiment(name string, opts ...ExperimentOption) (*Experiment, error) {
	return experiment.New(name, opts...)
}

// NewSweep creates a parameter sweep over experiments assembled by base;
// see Sweep.Vary / Sweep.VaryFunc / Sweep.Run.
func NewSweep(name string, base func() (*Experiment, error)) *Sweep {
	return experiment.NewSweep(name, base)
}

// ExperimentFromDocument compiles a JSON scenario document into an
// experiment — the same surface Go-built scenarios use.
func ExperimentFromDocument(d *ScenarioDocument) (*Experiment, error) {
	return experiment.FromDocument(d)
}

// LoadExperiment reads a scenario document from a JSON file and compiles
// it into an experiment.
func LoadExperiment(path string) (*Experiment, error) {
	return experiment.LoadDocument(path)
}

// Experiment assembly options, re-exported from internal/experiment.
var (
	WithInfra        = experiment.WithInfra
	WithStep         = experiment.WithStep
	WithCollectEvery = experiment.WithCollectEvery
	WithSeed         = experiment.WithSeed
	WithEngine       = experiment.WithEngine
	WithWindow       = experiment.WithWindow
	WithDuration     = experiment.WithDuration
	WithLoopFlags    = experiment.WithLoopFlags
	WithAccessMatrix = experiment.WithAccessMatrix
	WithWorkload     = experiment.WithWorkload
	WithDaemons      = experiment.WithDaemons
	WithProbes       = experiment.WithProbes
	WithSetup        = experiment.WithSetup
	WithFault        = experiment.WithFault
	// WithFluid enables the hybrid analytic/discrete aggregation tier for
	// one already-declared workload: above FluidConfig.Above expected
	// arrivals per tick the workload is carried analytically through the
	// M/M/c machinery (with matching capacity reservations on the shared
	// tiers), falling back to discrete sampling near saturation and inside
	// fault windows. See DESIGN.md, "Fluid workload tier".
	WithFluid = experiment.WithFluid
)

// Fault injection: phased chaos scenarios (stabilize -> inject -> recover)
// built from a composable fault library; every fault transition is a
// calendar event, so chaos runs compose with fast-forward, thinning and
// bulk-dense stepping for free. See DESIGN.md, "Fault injection & phased
// scenarios".
type (
	// Fault is one injectable degradation of the fault library.
	Fault = faults.Fault
	// FaultInjection schedules one fault: inject at At, recover after
	// Duration (zero duration elides the injection entirely).
	FaultInjection = faults.Injection
	// WANFault fails (magnitude 1) or degrades (magnitude in (0,1)) a WAN
	// connection between two adjacent DCs.
	WANFault = faults.WAN
	// DCFault blacks out (magnitude 1) or derates (magnitude in (0,1)) a
	// whole data center.
	DCFault = faults.DC
	// StorageFault puts a tier's arrays in degraded mode with synthetic
	// rebuild read traffic.
	StorageFault = faults.Storage
	// FailoverFault repoints a SYNCHREP master at a secondary for the
	// injection window.
	FailoverFault = faults.Failover
	// FaultReport is the recovery analysis harvested into Result.Faults:
	// exact injection/recovery times, peak backlog, time-to-reroute,
	// time-to-drain, and the fault:-prefixed scenario series.
	FaultReport = faults.Report
	// FaultSpec is the JSON form of one scheduled injection in a scenario
	// document's "faults" array.
	FaultSpec = config.FaultSpec
)

// Scenario phases recorded in the fault:phase series of a chaos run.
const (
	PhaseStabilize = faults.PhaseStabilize
	PhaseInject    = faults.PhaseInject
	PhaseRecover   = faults.PhaseRecover
)

// DeriveSeed derives an independent sub-stream seed from a base seed by
// SplitMix64 — the seed-derivation contract behind per-workload RNG
// streams and per-sweep-point seeds.
func DeriveSeed(base, stream uint64) uint64 { return core.DeriveSeed(base, stream) }

// Simulation core.
type (
	// Simulation owns the discrete time loop, agents, sources and metrics.
	Simulation = core.Simulation
	// SimConfig parameterizes a Simulation (step size, seed, engine).
	SimConfig = core.Config
	// Engine parallelizes the per-tick sweep over the active agents —
	// those with in-flight work; idle agents are not stepped (see
	// DESIGN.md, "Active-set sweep scheduling").
	Engine = core.Engine
	// SequentialEngine is the deterministic single-threaded reference.
	SequentialEngine = core.SequentialEngine
	// Source injects work into the simulation. NextPoll reports when the
	// next Poll can have an effect, letting the event-horizon loop skip
	// the quiet ticks between injections (see DESIGN.md).
	Source = core.Source
	// SourceFunc adapts a function to the Source interface.
	SourceFunc = core.SourceFunc
	// OpRun is a runnable operation instance (advanced users; most callers
	// go through cascade Instantiate).
	OpRun = core.OpRun
	// Gauge is an interned handle to a named simulation gauge (see
	// Simulation.GaugeHandle); hot paths use it to skip map lookups.
	Gauge = core.Gauge
)

// NewSimulation builds a simulation; zero-value config selects a 10 ms
// step, sequential engine and snapshot every second.
func NewSimulation(cfg SimConfig) *Simulation { return core.NewSimulation(cfg) }

// NewScatterGather returns the classic Scatter-Gather engine of §4.3.4
// with the given dispatcher thread count.
func NewScatterGather(threads int) Engine { return dispatch.NewScatterGather(threads) }

// NewHDispatch returns the H-Dispatch engine of §4.3.5; setSize <= 0
// selects the paper's best agent-set size of 64.
func NewHDispatch(threads, setSize int) Engine { return dispatch.NewHDispatch(threads, setSize) }

// Topology: specifications and built holons.
type (
	// InfraSpec describes the whole infrastructure to build.
	InfraSpec = topology.InfraSpec
	// DCSpec describes one data center.
	DCSpec = topology.DCSpec
	// TierSpec describes a tier of identical servers.
	TierSpec = topology.TierSpec
	// ServerSpec describes one server's hardware.
	ServerSpec = topology.ServerSpec
	// ClientSpec describes a data center's client population hardware.
	ClientSpec = topology.ClientSpec
	// WANSpec describes a WAN connection between two data centers.
	WANSpec = topology.WANSpec
	// Infrastructure is the built root holon.
	Infrastructure = topology.Infrastructure
	// DataCenter is a built data-center holon.
	DataCenter = topology.DataCenter
	// Tier is a built tier holon.
	Tier = topology.Tier
	// Server is a built server holon.
	Server = topology.Server
	// Cost is the R parameter array carried by cascade messages.
	Cost = topology.Cost
	// Endpoint is a resolved message endpoint.
	Endpoint = topology.Endpoint
)

// Hardware component specifications (§3.4.2).
type (
	// CPUSpec describes a multi-socket multi-core processor.
	CPUSpec = hardware.CPUSpec
	// DiskSpec describes one disk (controller cache + drive).
	DiskSpec = hardware.DiskSpec
	// RAIDSpec describes a redundant array of identical disks.
	RAIDSpec = hardware.RAIDSpec
	// SANSpec describes a storage area network.
	SANSpec = hardware.SANSpec
	// LinkSpec describes a network link (bandwidth, latency, allocation).
	LinkSpec = hardware.LinkSpec
)

// Build materializes an infrastructure specification into simulation
// agents and returns the root holon.
func Build(sim *Simulation, spec InfraSpec) (*Infrastructure, error) {
	return topology.Build(sim, spec)
}

// Software model: message cascades.
type (
	// Op is a reusable operation definition (a message cascade).
	Op = cascade.Op
	// Msg is one message of a cascade.
	Msg = cascade.Msg
	// End is a message endpoint reference (role at a site).
	End = cascade.End
	// Role names a holon type (Client, App, DB, FS, Idx, Daemon).
	Role = cascade.Role
	// Site selects the local or master data center for an endpoint.
	Site = cascade.Site
	// Binding resolves cascade roles to concrete holons for one instance.
	Binding = cascade.Binding
)

// Cascade roles and sites, re-exported for building operations.
const (
	RoleClient = cascade.Client
	RoleApp    = cascade.App
	RoleDB     = cascade.DB
	RoleFS     = cascade.FS
	RoleIdx    = cascade.Idx
	RoleDaemon = cascade.Daemon

	SiteLocal  = cascade.SiteLocal
	SiteMaster = cascade.SiteMaster
)

// SeqOp builds an operation whose messages execute strictly in sequence.
func SeqOp(name string, msgs ...Msg) Op { return cascade.Seq(name, msgs...) }

// NewBinding builds a binding for a client at local manipulating a file
// owned by master.
func NewBinding(inf *Infrastructure, local, master *DataCenter) *Binding {
	return cascade.NewBinding(inf, local, master)
}

// Instantiate turns an operation plus binding into a runnable OpRun.
func Instantiate(op Op, b *Binding) (OpRun, error) { return cascade.Instantiate(op, b) }

// EstimateOp returns the isolated (contention-free) duration of an
// operation under the binding, in seconds.
func EstimateOp(op Op, b *Binding, step float64) (float64, error) {
	return cascade.Estimate(op, b, step)
}

// Workloads.
type (
	// Curve is a 24-hour concurrent-user curve (hourly, GMT).
	Curve = workload.Curve
	// AccessMatrix maps client locations to file-owner probabilities.
	AccessMatrix = workload.AccessMatrix
	// WorkloadSeries is a sequential concatenation of operations (§5.2.2).
	WorkloadSeries = workload.Series
	// SeriesLauncher launches series at fixed intervals (Chapter 5).
	SeriesLauncher = workload.SeriesLauncher
	// AppWorkload drives an application with Poisson arrivals (Chapters 6-7).
	AppWorkload = workload.AppWorkload
)

// BusinessDay builds a diurnal business-hours curve.
func BusinessDay(peak float64, startGMT, endGMT int, nightFloor float64) Curve {
	return workload.BusinessDay(peak, startGMT, endGMT, nightFloor)
}

// SingleMaster returns an access matrix sending every request to master.
func SingleMaster(dcs []string, master string) AccessMatrix {
	return workload.SingleMaster(dcs, master)
}

// Background processes.
type (
	// GrowthModel maps data centers to hourly data-generation curves.
	GrowthModel = background.GrowthModel
	// SyncDaemon runs SYNCHREP cycles (§6.4.3).
	SyncDaemon = background.SyncDaemon
	// IndexDaemon runs INDEXBUILD cycles (§6.4.3).
	IndexDaemon = background.IndexDaemon
)

// Metrics.
type (
	// Series is a time series of samples.
	Series = metrics.Series
	// Table renders aligned text tables.
	Table = metrics.Table
	// Responses tracks operation response times by type and location.
	Responses = metrics.Responses
)

// RMSE computes the root-mean-square error between two series (Eq. 5.5).
func RMSE(reference, predicted *Series) (float64, error) { return metrics.RMSE(reference, predicted) }

// Analytic queueing (capacity planning).
type (
	// MMc summarizes an analytic M/M/c queue.
	MMc = queueing.MMc
)

// ErlangC returns the waiting probability of an M/M/c queue with offered
// load a Erlangs.
func ErlangC(c int, a float64) (float64, error) { return queueing.ErlangC(c, a) }

// RequiredServers returns the minimum server count keeping the mean
// queueing delay below maxWait.
func RequiredServers(lambda, mu, maxWait float64) (int, error) {
	return queueing.RequiredServers(lambda, mu, maxWait)
}

// Scenario documents and result export.
type (
	// ScenarioDocument is a JSON-serializable simulator input (§3.2.1).
	ScenarioDocument = config.Document
	// WorkloadSpec is the JSON form of one application workload.
	WorkloadSpec = config.WorkloadSpec
)

// LoadScenario reads and validates a scenario document from a JSON file.
func LoadScenario(path string) (*ScenarioDocument, error) { return config.Load(path) }

// ExportSeriesCSV writes series as long-format CSV for external plotting.
func ExportSeriesCSV(w io.Writer, series map[string]*Series) error {
	return config.ExportSeriesCSV(w, series)
}

// CollectorSeries gathers every registered series of a collector for
// export.
func CollectorSeries(col *metrics.Collector) map[string]*Series {
	return config.CollectorSeries(col)
}

// Thesis scenarios.
type (
	// ValidationConfig parameterizes a Chapter 5 validation run.
	ValidationConfig = scenarios.ValidationConfig
	// ValidationResult gathers the Chapter 5 outputs.
	ValidationResult = scenarios.ValidationResult
	// CaseConfig parameterizes the Chapter 6/7 case studies.
	CaseConfig = scenarios.CaseConfig
	// CaseStudy is a built consolidation or multiple-master run.
	CaseStudy = scenarios.CaseStudy
	// DayNightConfig parameterizes the 24 h day-night client scenario.
	DayNightConfig = scenarios.DayNightConfig
	// DayNightResult gathers the day-night scenario outputs.
	DayNightResult = scenarios.DayNightResult
)

// RunValidation executes one Chapter 5 validation experiment (0-2).
func RunValidation(cfg ValidationConfig) (*ValidationResult, error) {
	return scenarios.RunValidation(cfg)
}

// NewConsolidation builds the Chapter 6 consolidated-platform case study.
func NewConsolidation(cfg CaseConfig) (*CaseStudy, error) {
	return scenarios.NewConsolidation(cfg)
}

// NewMultiMaster builds the Chapter 7 multiple-master case study.
func NewMultiMaster(cfg CaseConfig) (*CaseStudy, error) {
	return scenarios.NewMultiMaster(cfg)
}

// RunDayNight executes the day-night client scenario: the validation
// platform under a 24 h business-day curve with a night floor — the
// regime the event calendar and thinned arrivals accelerate.
func RunDayNight(cfg DayNightConfig) (*DayNightResult, error) {
	return scenarios.RunDayNight(cfg)
}
